// Command psn-router fronts a fleet of psn-serve replicas: requests
// are sharded by dataset over a rendezvous hash with a failover
// replica per dataset, backed by active health checking, per-backend
// circuit breakers, a global retry budget, router-level backpressure
// and client-deadline propagation. See internal/router and the
// README's "Fleet serving" section.
//
// Usage:
//
//	psn-router -backends 127.0.0.1:8081,127.0.0.1:8082
//	psn-router -addr :8080 -backends ... -replication 2
//	psn-router -addr 127.0.0.1:0 -backends ...   # ephemeral; prints ADDR=
//
// On startup the actual bound address is printed to stdout as a
// machine-parseable line:
//
//	ADDR=127.0.0.1:43651
//
// so fleet scripts can spawn routers on ephemeral ports without races
// (logs go to stderr; stdout carries only the ADDR line).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (port 0 = ephemeral; the bound address is printed as ADDR=host:port)")
		backendsFlag = flag.String("backends", "", "comma-separated psn-serve replica addresses (required), e.g. 127.0.0.1:8081,127.0.0.1:8082")
		replication  = flag.Int("replication", 0, "replicas per dataset: primary + failovers (0 = 2, clamped to the backend count)")
		healthEvery  = flag.Duration("health-interval", 0, "active health-check period (0 = 1s)")
		maxInflight  = flag.Int("max-inflight", 0, "max proxied requests in flight (0 = 16x GOMAXPROCS, <0 = unlimited); excess get 503 with X-Psn-Shed: router")
		reqTimeout   = flag.Duration("request-timeout", 0, "end-to-end deadline per request across all attempts, propagated downstream via X-Psn-Deadline-Ms (0 = 30s, <0 = none)")
		perTry       = flag.Duration("per-try-timeout", 0, "deadline per attempt, so a wedged replica costs one try before failover (0 = 10s, <0 = none)")
		maxAttempts  = flag.Int("max-attempts", 0, "dispatches per request: first attempt + failovers (0 = 2)")
		budgetRatio  = flag.Float64("retry-budget", 0, "global retry budget as a fraction of completed requests (0 = 0.2, <0 = unlimited)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound: /healthz flips to 503 and in-flight requests get this long to finish")
	)
	flag.Parse()

	backends := splitBackends(*backendsFlag)
	if len(backends) == 0 {
		fmt.Fprintln(os.Stderr, "psn-router: -backends is required")
		os.Exit(2)
	}

	rt, err := router.New(router.Config{
		Backends:         backends,
		Replication:      *replication,
		HealthInterval:   *healthEvery,
		MaxInflight:      *maxInflight,
		RequestTimeout:   *reqTimeout,
		PerTryTimeout:    *perTry,
		MaxAttempts:      *maxAttempts,
		RetryBudgetRatio: *budgetRatio,
		Logger:           slog.New(slog.NewTextHandler(os.Stderr, nil)),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "psn-router:", err)
		os.Exit(2)
	}
	defer rt.Close()
	rt.CheckNow() // route from a checked fleet picture on the first request

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("psn-router: %v", err)
	}
	// The machine-parseable bound address, on stdout by contract (all
	// logging goes to stderr): fleet scripts read this line to learn
	// ephemeral ports without a race.
	fmt.Printf("ADDR=%s\n", ln.Addr())
	os.Stdout.Sync()

	hs := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("psn-router: listening on %s (backends: %s)", ln.Addr(), strings.Join(backends, ", "))
		errc <- hs.Serve(ln)
	}()
	select {
	case err := <-errc:
		log.Fatalf("psn-router: %v", err)
	case <-ctx.Done():
	}
	// Graceful shutdown mirrors psn-serve: flip /healthz to 503 so an
	// upstream balancer drains traffic away, then stop accepting and
	// give in-flight proxied requests -drain-timeout to finish.
	log.Print("psn-router: draining")
	rt.SetDraining(true)
	shctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shctx); err != nil {
		log.Fatalf("psn-router: shutdown: %v", err)
	}
	log.Print("psn-router: drained")
}

func splitBackends(s string) []string {
	var out []string
	for _, b := range strings.Split(s, ",") {
		if b = strings.TrimSpace(b); b != "" {
			out = append(out, b)
		}
	}
	return out
}
