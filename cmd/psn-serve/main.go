// Command psn-serve exposes the repository's experiments as an HTTP
// JSON service: path enumeration, forwarding simulation and figure
// data over a dataset registry with cached per-dataset artifacts.
//
// Usage:
//
//	psn-serve                                  # serve built-ins on :8080
//	psn-serve -addr :9090 -workers 8
//	psn-serve -trace office=office.txt         # add a file-backed dataset
//	psn-serve -max-inflight 32 -cache-size 512
//	psn-serve -selfcheck                       # smoke: serve, query, compare, exit
//
// Endpoints: GET /datasets, POST /enumerate, POST /simulate,
// GET /figures, GET /figures/{id}/data, GET /healthz, GET /metrics.
// See the README's "Serving" section for request shapes and the
// caching/determinism guarantees.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	psn "repro"
	"repro/internal/faultinject"
	"repro/internal/pathenum"
	"repro/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "engine worker goroutines per request (0 = GOMAXPROCS; results are identical)")
		maxInflight  = flag.Int("max-inflight", 0, "max experiment requests in flight (0 = 4x GOMAXPROCS, <0 = unlimited); excess requests get 503")
		cacheSize    = flag.Int("cache-size", 0, "memoized-result LRU entries (0 = 256, <0 = disable)")
		artifacts    = flag.String("artifacts", "", "artifact store directory (see psn-warm); warmed graphs and oracle tables load instead of building, with live build as fallback")
		selfcheck    = flag.Bool("selfcheck", false, "start on an ephemeral port, verify /healthz and /enumerate against the library, and exit")
		enablePprof  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (bypasses the in-flight limit)")
		traceSlow    = flag.Duration("trace-slow", 0, "log a structured stage-breakdown line for requests at least this slow (0 = off), e.g. -trace-slow 250ms")
		accessLog    = flag.Bool("access-log", false, "log one structured line per request (method, path, dataset, status, latency, request ID)")
		reqTimeout   = flag.Duration("request-timeout", 0, "deadline per experiment request: compute abandons cooperatively and the client gets 503 + Retry-After (0 = 30s, <0 = no deadline)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound: /healthz flips to 503 and in-flight requests get this long to finish")
		injectSpec   = flag.String("inject", "", "fault-injection spec, e.g. graph-load:corrupt*1,enumerate:delay=200ms,handler:panic (chaos testing only)")
	)
	reg := psn.NewRegistry()
	flag.Func("trace", "register a file-backed dataset as name=path (repeatable)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		return reg.RegisterFile(name, path)
	})
	flag.Parse()

	faults, err := faultinject.Parse(*injectSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psn-serve:", err)
		os.Exit(2)
	}
	if faults != nil {
		log.Printf("psn-serve: FAULT INJECTION ARMED (-inject %s)", *injectSpec)
	}

	srv := psn.NewServer(psn.ServeConfig{
		Registry:       reg,
		Workers:        *workers,
		MaxInflight:    *maxInflight,
		CacheSize:      *cacheSize,
		ArtifactDir:    *artifacts,
		EnablePprof:    *enablePprof,
		TraceSlow:      *traceSlow,
		AccessLog:      *accessLog,
		RequestTimeout: *reqTimeout,
		Faults:         faults,
		Logger:         slog.New(slog.NewTextHandler(os.Stderr, nil)),
	})

	if *selfcheck {
		if err := runSelfcheck(srv); err != nil {
			fmt.Fprintln(os.Stderr, "psn-serve: selfcheck:", err)
			os.Exit(1)
		}
		fmt.Println("selfcheck ok")
		return
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("psn-serve: %v", err)
	}
	// The machine-parseable bound address, on stdout by contract (all
	// logging goes to stderr): fleet scripts and the CI smoke read this
	// line to learn ephemeral ports (-addr :0) without a race.
	fmt.Printf("ADDR=%s\n", ln.Addr())
	os.Stdout.Sync()

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("psn-serve: listening on %s (datasets: %s)", ln.Addr(), strings.Join(reg.Names(), ", "))
		errc <- hs.Serve(ln)
	}()
	select {
	case err := <-errc:
		log.Fatalf("psn-serve: %v", err)
	case <-ctx.Done():
	}
	// Graceful shutdown: flip /healthz to 503 first so load balancers
	// drain traffic away, then stop accepting and give in-flight
	// requests -drain-timeout to finish.
	log.Print("psn-serve: draining")
	srv.SetDraining(true)
	shctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shctx); err != nil {
		log.Fatalf("psn-serve: shutdown: %v", err)
	}
	log.Print("psn-serve: drained")
}

// runSelfcheck starts the server on an ephemeral port, hits /healthz
// and one /enumerate request, and verifies the served response is
// byte-identical to the direct library call — the end-to-end
// determinism contract, exercised over a real TCP socket.
func runSelfcheck(srv *psn.Server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	defer func() {
		hs.Close()
		<-done
	}()
	base := "http://" + ln.Addr().String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/healthz: status %d: %s", resp.StatusCode, body)
	}
	var health service.HealthResponse
	if err := json.Unmarshal(body, &health); err != nil {
		return fmt.Errorf("/healthz: %v", err)
	}
	if health.Status != "ok" {
		return fmt.Errorf("/healthz: status %q", health.Status)
	}

	reqBody := `{"dataset":"dev","src":0,"dst":17,"start":0,"k":50}`
	resp, err = http.Post(base+"/enumerate", "application/json", strings.NewReader(reqBody))
	if err != nil {
		return err
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/enumerate: status %d: %s", resp.StatusCode, served)
	}

	direct, err := srv.Enumerate("dev", []pathenum.Message{{Src: 0, Dst: 17, Start: 0}}, pathenum.Options{K: 50})
	if err != nil {
		return fmt.Errorf("direct enumerate: %v", err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		return err
	}
	want = append(want, '\n')
	if !bytes.Equal(served, want) {
		return errors.New("served /enumerate response differs from the direct library call")
	}
	if len(direct.Results) != 1 || !direct.Results[0].Found {
		return errors.New("enumerate found no path on the dev trace")
	}
	return nil
}
