// Command psn-sim runs the paper's forwarding-algorithm comparison on
// a contact trace: success rate and mean delay per algorithm, with an
// optional split by in/out pair type.
//
// Usage:
//
//	psn-sim -dataset infocom-9-12 -runs 10
//	psn-sim -trace trace.txt -rate 0.25 -bypair
//	psn-sim -dataset conext-9-12 -extended -relay
//	psn-sim -dataset city-2k -algo epidemic -runs 2 -rate 0.05
//
// -algo filters the algorithm set by case-insensitive substring —
// essential on the city-scale datasets, where oracle-distance
// algorithms (Dynamic Programming) would trigger an O(n³) metric
// computation most runs don't need.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	psn "repro"
	"repro/internal/dtnsim"
	"repro/internal/trace"
)

func main() {
	var (
		dataset  = flag.String("dataset", "infocom-9-12", "named dataset (ignored with -trace)")
		traceIn  = flag.String("trace", "", "read a trace file instead of generating one")
		rate     = flag.Float64("rate", 0.25, "message rate (messages/s; paper: 1 per 4 s)")
		runs     = flag.Int("runs", 10, "independent workload seeds to average")
		seed     = flag.Int64("seed", 1, "base workload seed")
		extended = flag.Bool("extended", false, "include Direct Delivery, Spray and Wait, PRoPHET")
		algo     = flag.String("algo", "", "only run algorithms whose name contains this substring (case-insensitive)")
		relay    = flag.Bool("relay", false, "use single-copy relay semantics instead of replication")
		byPair   = flag.Bool("bypair", false, "split results by in/out pair type")
		workers  = flag.Int("workers", 0, "worker goroutines per run (0 = GOMAXPROCS, 1 = serial; results are identical)")
	)
	flag.Parse()

	tr, err := loadTrace(*traceIn, *dataset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psn-sim:", err)
		os.Exit(1)
	}
	algos := psn.PaperAlgorithms()
	if *extended {
		algos = psn.AllAlgorithms()
	}
	if *algo != "" {
		var kept []psn.Algorithm
		for _, a := range algos {
			if strings.Contains(strings.ToLower(a.Name()), strings.ToLower(*algo)) {
				kept = append(kept, a)
			}
		}
		if len(kept) == 0 {
			names := make([]string, len(algos))
			for i, a := range algos {
				names[i] = a.Name()
			}
			fmt.Fprintf(os.Stderr, "psn-sim: -algo %q matches none of: %s\n", *algo, strings.Join(names, ", "))
			os.Exit(2)
		}
		algos = kept
	}
	mode := psn.Replicate
	if *relay {
		mode = psn.Relay
	}

	fmt.Printf("trace %q: %d nodes, %d contacts, %d runs x rate %.3g/s\n",
		tr.Name, tr.NumNodes, tr.Len(), *runs, *rate)
	// One sweep engine for the whole (algorithm × run) matrix: the
	// oracle tables are built once and per-run simulation state is
	// pooled, so each run after the first pays only the replay.
	sweep, err := psn.NewSimSweep(tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psn-sim:", err)
		os.Exit(1)
	}
	cl := psn.NewClassifier(tr)
	fmt.Printf("%-22s %10s %14s %10s %12s\n", "algorithm", "success", "avg delay (s)", "delivered", "txs/msg")
	for _, alg := range algos {
		var all []*psn.SimResult
		for r := 0; r < *runs; r++ {
			msgs := psn.SimWorkload(tr, *rate, tr.Horizon*2/3, psn.DeriveSeed(*seed, r))
			res, err := sweep.Run(psn.SimConfig{Algorithm: alg, Messages: msgs, CopyMode: mode, Workers: *workers})
			if err != nil {
				fmt.Fprintln(os.Stderr, "psn-sim:", err)
				os.Exit(1)
			}
			all = append(all, res)
		}
		merged := dtnsim.Merge(all...)
		delivered := 0
		for _, o := range merged.Outcomes {
			if o.Delivered {
				delivered++
			}
		}
		txPerMsg := 0.0
		if len(merged.Outcomes) > 0 {
			txPerMsg = float64(merged.Transmissions) / float64(len(merged.Outcomes))
		}
		fmt.Printf("%-22s %10.3f %14.0f %10d %12.1f\n",
			alg.Name(), merged.SuccessRate(), merged.MeanDelay(), delivered, txPerMsg)
		if *byPair {
			for _, pt := range trace.PairTypes {
				part := merged.ByPairType(cl)[pt]
				fmt.Printf("    %-18s %10.3f %14.0f %10d\n", pt, part.SuccessRate(), part.MeanDelay(), len(part.Outcomes))
			}
		}
	}
}

// loadTrace reads a trace file, or resolves a named dataset through
// the shared registry (an unknown name lists the available ones).
func loadTrace(path, dataset string) (*psn.Trace, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return psn.ReadTrace(f)
	}
	return psn.NewRegistry().Trace(dataset)
}
