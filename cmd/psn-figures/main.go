// Command psn-figures regenerates the paper's evaluation figures as
// printed tables and series.
//
// Usage:
//
//	psn-figures                 # every figure, paper-scale parameters
//	psn-figures -id F04a        # one figure
//	psn-figures -list           # available figures
//	psn-figures -messages 20    # reduced sample for a quick pass
package main

import (
	"flag"
	"fmt"
	"os"

	psn "repro"
)

func main() {
	var (
		id       = flag.String("id", "", "render a single figure by id (e.g. F04a)")
		list     = flag.Bool("list", false, "list available figures")
		messages = flag.Int("messages", 0, "messages per dataset for enumeration figures (0 = default 60)")
		k        = flag.Int("k", 0, "explosion threshold (0 = paper's 2000)")
		runs     = flag.Int("runs", 0, "simulation runs (0 = paper's 10)")
		seed     = flag.Int64("seed", 1, "sampling seed")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS, 1 = serial; figures are identical)")
	)
	flag.Parse()

	if *list {
		for _, f := range psn.Figures() {
			fmt.Printf("%-5s %s\n", f.ID, f.Title)
		}
		return
	}

	h := psn.NewFigureHarness(psn.FigureParams{
		Messages: *messages, K: *k, SimRuns: *runs, Seed: *seed, Workers: *workers,
	})
	if *id != "" {
		f, ok := psn.LookupFigure(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "psn-figures: unknown figure %q (try -list)\n", *id)
			os.Exit(1)
		}
		if err := h.RenderOne(f, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "psn-figures:", err)
			os.Exit(1)
		}
		return
	}
	if err := h.RenderAll(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "psn-figures:", err)
		os.Exit(1)
	}
}
