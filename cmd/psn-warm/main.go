// Command psn-warm precomputes the expensive per-dataset artifacts —
// built space-time graphs and simulator oracle tables — into an
// on-disk artifact store, so a psn-serve replica started with
// -artifacts pointing at the same directory serves its first request
// from a millisecond load instead of a multi-second build.
//
// Usage:
//
//	psn-warm -dir cache                          # warm dev + the 4 conference datasets at delta 10
//	psn-warm -dir cache -datasets city-2k        # warm the city graph (seconds to build, ms to load)
//	psn-warm -dir cache -deltas 10,60,600        # several discretizations per dataset
//	psn-warm -dir cache -trace office=office.txt -datasets office
//
// Artifacts are keyed by format version, build parameters, and a
// digest of the source trace; a replica that resolves a dataset to
// different data than the warm run saw falls back to a live build, so
// a stale cache can cost time but never correctness.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	psn "repro"
	"repro/internal/artstore"
	"repro/internal/stgraph"
)

func main() {
	var (
		dir      = flag.String("dir", "", "artifact store directory (required)")
		datasets = flag.String("datasets", "dev,infocom-9-12,infocom-3-6,conext-9-12,conext-3-6",
			"comma-separated dataset names to warm")
		deltas = flag.String("deltas", "10", "comma-separated graph discretization steps (seconds)")
	)
	reg := psn.NewRegistry()
	flag.Func("trace", "register a file-backed dataset as name=path (repeatable)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		return reg.RegisterFile(name, path)
	})
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "psn-warm: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	var steps []float64
	for _, s := range strings.Split(*deltas, ",") {
		d, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || !(d > 0) {
			fmt.Fprintf(os.Stderr, "psn-warm: bad delta %q\n", s)
			os.Exit(2)
		}
		steps = append(steps, d)
	}

	store := &artstore.Store{Dir: *dir}
	for _, name := range strings.Split(*datasets, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if err := warm(store, reg, name, steps); err != nil {
			fmt.Fprintln(os.Stderr, "psn-warm:", err)
			os.Exit(1)
		}
	}
}

// warm builds and stores the oracle and one graph per delta for the
// named dataset, reporting build time and artifact size for each.
func warm(store *artstore.Store, reg *psn.Registry, name string, deltas []float64) error {
	t0 := time.Now()
	tr, err := reg.Trace(name)
	if err != nil {
		return err
	}
	digest := artstore.TraceDigest(tr)
	fmt.Printf("%s: trace ready in %v (%d nodes, %d contacts)\n",
		name, time.Since(t0).Round(time.Millisecond), tr.NumNodes, tr.Len())

	t0 = time.Now()
	path, err := store.SaveOracle(name, digest, psn.NewSimOracle(tr))
	if err != nil {
		return err
	}
	if err := report(name+" oracle", path, t0); err != nil {
		return err
	}
	for _, delta := range deltas {
		t0 = time.Now()
		g, err := stgraph.New(tr, delta)
		if err != nil {
			return err
		}
		path, err := store.SaveGraph(name, digest, g)
		if err != nil {
			return err
		}
		if err := report(fmt.Sprintf("%s graph (delta %g)", name, delta), path, t0); err != nil {
			return err
		}
	}
	return nil
}

func report(what, path string, t0 time.Time) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s (%.1f MB) in %v\n",
		what, path, float64(info.Size())/(1<<20), time.Since(t0).Round(time.Millisecond))
	return nil
}
