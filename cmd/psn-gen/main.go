// Command psn-gen generates synthetic pocket-switched-network contact
// traces and writes them in the text interchange format.
//
// Usage:
//
//	psn-gen -dataset infocom-9-12 > trace.txt
//	psn-gen -nodes 50 -horizon 3600 -maxrate 0.04 -seed 7 > trace.txt
//	psn-gen -waypoint -nodes 30 -horizon 1800 > trace.txt
//	psn-gen -dataset conext-9-12 -stats
package main

import (
	"flag"
	"fmt"
	"os"

	psn "repro"
	"repro/internal/stats"
	"repro/internal/tracegen"
)

func main() {
	var (
		dataset   = flag.String("dataset", "", "named dataset: infocom-9-12, infocom-3-6, conext-9-12, conext-3-6, dev")
		nodes     = flag.Int("nodes", 98, "number of nodes (custom generator)")
		station   = flag.Int("stationary", 20, "stationary nodes (custom generator)")
		horizon   = flag.Float64("horizon", 10800, "trace length in seconds")
		maxRate   = flag.Float64("maxrate", 0.046, "max per-node contact rate (contacts/s)")
		meanDur   = flag.Float64("meandur", 25, "mean contact duration (s)")
		scan      = flag.Float64("scan", 0, "inquiry-scan quantization interval (s, 0 = off)")
		seed      = flag.Int64("seed", 1, "generator seed")
		waypoint  = flag.Bool("waypoint", false, "use the random-waypoint mobility generator")
		showStats = flag.Bool("stats", false, "print summary statistics instead of the trace")
	)
	flag.Parse()

	tr, err := generate(*dataset, *waypoint, *nodes, *station, *horizon, *maxRate, *meanDur, *scan, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psn-gen:", err)
		os.Exit(1)
	}
	if *showStats {
		printStats(tr)
		return
	}
	if err := psn.WriteTrace(os.Stdout, tr); err != nil {
		fmt.Fprintln(os.Stderr, "psn-gen:", err)
		os.Exit(1)
	}
}

func generate(dataset string, waypoint bool, nodes, station int, horizon, maxRate, meanDur, scan float64, seed int64) (*psn.Trace, error) {
	if dataset != "" {
		// The shared registry resolves the name (and lists the
		// available ones on a miss).
		return psn.NewRegistry().Trace(dataset)
	}
	if waypoint {
		return psn.GenerateWaypoint(psn.WaypointConfig{
			Name: "waypoint", NumNodes: nodes, Horizon: horizon,
			Width: 200, Height: 150, Range: 10,
			MinSpeed: 0.5, MaxSpeed: 2, MaxPause: 60, Seed: seed,
		})
	}
	return psn.GenerateConference(tracegen.Config{
		Name: "custom", NumNodes: nodes, Stationary: station,
		Horizon: horizon, MaxRate: maxRate,
		MeanDuration: meanDur, MinDuration: 5, ScanInterval: scan, Seed: seed,
	})
}

func printStats(tr *psn.Trace) {
	counts := tr.ContactCounts()
	xs := make([]float64, len(counts))
	for i, c := range counts {
		xs[i] = float64(c)
	}
	fmt.Printf("trace %q: %d nodes, %.0f s horizon, %d contacts\n",
		tr.Name, tr.NumNodes, tr.Horizon, tr.Len())
	fmt.Printf("per-node contacts: min %.0f / median %.0f / mean %.1f / max %.0f\n",
		stats.Quantile(xs, 0), stats.Median(xs), stats.Mean(xs), stats.Quantile(xs, 1))
	cl := psn.NewClassifier(tr)
	fmt.Printf("median rate: %.5f contacts/s; %d in-nodes, %d out-nodes\n",
		cl.Median(), len(cl.InNodes()), len(cl.OutNodes()))
}
