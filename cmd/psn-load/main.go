// Command psn-load drives an open-loop workload against a running
// psn-serve and reports per-class latency distributions. Arrivals are
// Poisson at the target rate and independent of completions — the
// generator keeps firing when the server slows down, so the measured
// latencies include queueing and the shed (503) count shows where the
// backpressure limit engaged, instead of the closed-loop coordinated
// omission that would hide both.
//
// Usage:
//
//	psn-load                                   # 30s mixed workload against :8080
//	psn-load -addr :9090 -duration 60s -rate 50
//	psn-load -mix enumerate=4,batch=1,simulate=2,figures=1
//	psn-load -serve -duration 2s -strict       # self-contained smoke (CI)
//	psn-load -baseline LOAD_2026-08-01.json -regress 1.5
//	psn-load -check LOAD_2026-08-08.json       # validate a report file
//
// The report lands in LOAD_<date>.json: per-class request/error/shed
// counts and p50/p90/p99/max/mean latencies, diffable against an
// earlier run with -baseline (same JSON-snapshot idiom as psn-bench).
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	mathrand "math/rand/v2"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	psn "repro"
	"repro/internal/engine"
	"repro/internal/obs"
)

// class is one request class of the mix: a weight, a request builder
// seeded per request, and the accumulated results.
type class struct {
	name   string
	weight int
	build  func(rng *mathrand.Rand, dataset string) (method, path string, body []byte)

	hist     obs.Histogram
	requests atomic.Int64
	errors   atomic.Int64
	shed     atomic.Int64
	retries  atomic.Int64

	// Router-target accounting: sheds split by the X-Psn-Shed tier
	// marker (router backpressure vs replica backpressure), and
	// failovers the router performed on our behalf (X-Psn-Failovers on
	// successful responses). All zero against a bare replica.
	shedRouter  atomic.Int64
	shedReplica atomic.Int64
	failovers   atomic.Int64
}

// devNodes is the node-ID pool for generated messages. Every built-in
// dataset has at least this many nodes, so random (src, dst) pairs
// below it are always valid.
const devNodes = 18

// buildEnumerate is a single-message /enumerate: random (src, dst)
// pair, small start jitter, modest K. The parameter spread gives the
// server's result cache a realistic mix of hits and misses.
func buildEnumerate(rng *mathrand.Rand, dataset string) (string, string, []byte) {
	src := rng.IntN(devNodes)
	dst := rng.IntN(devNodes - 1)
	if dst >= src {
		dst++
	}
	start := float64(rng.IntN(5)) * 10
	body := fmt.Sprintf(`{"dataset":%q,"src":%d,"dst":%d,"start":%g,"k":50}`, dataset, src, dst, start)
	return http.MethodPost, "/enumerate", []byte(body)
}

// buildBatch is a batch /enumerate of eight messages sharing a source
// and start — the shape the shared-prefix batch enumerator is built
// for.
func buildBatch(rng *mathrand.Rand, dataset string) (string, string, []byte) {
	src := rng.IntN(devNodes)
	var b strings.Builder
	fmt.Fprintf(&b, `{"dataset":%q,"k":50,"messages":[`, dataset)
	for i := 0; i < 8; i++ {
		dst := rng.IntN(devNodes - 1)
		if dst >= src {
			dst++
		}
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"src":%d,"dst":%d,"start":0}`, src, dst)
	}
	b.WriteString("]}")
	return http.MethodPost, "/enumerate", []byte(b.String())
}

// buildSimulate is a single-run epidemic /simulate with a per-request
// seed drawn from a small pool, mixing cached and fresh simulations.
func buildSimulate(rng *mathrand.Rand, dataset string) (string, string, []byte) {
	seed := 1 + rng.IntN(16)
	body := fmt.Sprintf(`{"dataset":%q,"algorithm":"epidemic","runs":1,"seed":%d}`, dataset, seed)
	return http.MethodPost, "/simulate", []byte(body)
}

// buildFigures lists the renderable figures — the cheap read-only
// probe class of the mix.
func buildFigures(rng *mathrand.Rand, dataset string) (string, string, []byte) {
	return http.MethodGet, "/figures", nil
}

var builders = map[string]func(*mathrand.Rand, string) (string, string, []byte){
	"enumerate": buildEnumerate,
	"batch":     buildBatch,
	"simulate":  buildSimulate,
	"figures":   buildFigures,
}

// parseMix turns "enumerate=4,batch=1,simulate=2,figures=1" into the
// class set with weights.
func parseMix(mix string) ([]*class, error) {
	var classes []*class
	seen := map[string]bool{}
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, ws, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want name=weight", part)
		}
		b, ok := builders[name]
		if !ok {
			return nil, fmt.Errorf("mix entry %q: unknown class (have enumerate, batch, simulate, figures)", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("mix entry %q: class repeated", part)
		}
		seen[name] = true
		w, err := strconv.Atoi(ws)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix entry %q: bad weight", part)
		}
		if w == 0 {
			continue
		}
		classes = append(classes, &class{name: name, weight: w, build: b})
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("mix %q selects no classes", mix)
	}
	return classes, nil
}

// LoadClass is one request class's results in the report.
type LoadClass struct {
	Name         string  `json:"name"`
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	Shed         int64   `json:"shed"`
	ShedRouter   int64   `json:"shedRouter,omitempty"`  // sheds marked X-Psn-Shed: router (router backpressure)
	ShedReplica  int64   `json:"shedReplica,omitempty"` // sheds attributed to a replica
	Failovers    int64   `json:"failovers,omitempty"`   // router failovers behind successful responses
	Retries      int64   `json:"retries,omitempty"`
	AchievedRate float64 `json:"achievedRate"` // completed requests / wall time
	P50Ms        float64 `json:"p50Ms"`
	P90Ms        float64 `json:"p90Ms"`
	P99Ms        float64 `json:"p99Ms"`
	MaxMs        float64 `json:"maxMs"`
	MeanMs       float64 `json:"meanMs"`
}

// LoadReport is the LOAD_<date>.json shape — the psn-bench snapshot
// idiom applied to serving latency, diffable with -baseline.
type LoadReport struct {
	Date         string      `json:"date"`
	Addr         string      `json:"addr"`
	DurationS    float64     `json:"durationS"`
	TargetRate   float64     `json:"targetRate"`
	AchievedRate float64     `json:"achievedRate"`
	Mix          string      `json:"mix"`
	Dataset      string      `json:"dataset"`
	Seed         int64       `json:"seed"`
	GOMAXPROCS   int         `json:"gomaxprocs"`
	Requests     int64       `json:"requests"`
	Errors       int64       `json:"errors"`
	Shed         int64       `json:"shed"`
	ShedRouter   int64       `json:"shedRouter,omitempty"`
	ShedReplica  int64       `json:"shedReplica,omitempty"`
	Failovers    int64       `json:"failovers,omitempty"`
	Retries      int64       `json:"retries,omitempty"`
	Classes      []LoadClass `json:"classes"`
}

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "psn-serve base URL (host:port also accepted)")
		duration = flag.Duration("duration", 30*time.Second, "generation window")
		rate     = flag.Float64("rate", 20, "target arrival rate, requests/second (open-loop Poisson)")
		mix      = flag.String("mix", "enumerate=4,batch=1,simulate=2,figures=1", "request mix as name=weight pairs")
		dataset  = flag.String("dataset", "dev", "dataset for enumerate/batch/simulate requests")
		seed     = flag.Int64("seed", 1, "workload seed (arrival process and request parameters)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		out      = flag.String("o", "", "report path (default LOAD_<date>.json)")
		baseline = flag.String("baseline", "", "previous LOAD_*.json to diff against")
		regress  = flag.Float64("regress", 0, "fail (exit 1) when any class's p99 ratio vs -baseline exceeds this (0 = report only)")
		check    = flag.String("check", "", "validate a LOAD_*.json file and exit")
		serve    = flag.Bool("serve", false, "start an in-process server on an ephemeral port and load it (self-contained smoke)")
		strict   = flag.Bool("strict", false, "exit 1 if any request errored or was shed")
		retry    = flag.Int("retry", 0, "retries per shed (503) response, with capped jittered exponential backoff honoring Retry-After (0 = report sheds as-is)")
	)
	flag.Parse()

	if *check != "" {
		if err := checkReport(*check); err != nil {
			fmt.Fprintf(os.Stderr, "psn-load: check %s: %v\n", *check, err)
			os.Exit(1)
		}
		fmt.Printf("%s ok\n", *check)
		return
	}

	classes, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psn-load: -mix:", err)
		os.Exit(2)
	}

	var base snapshotBaseline
	if *baseline != "" {
		if err := base.load(*baseline); err != nil {
			fmt.Fprintln(os.Stderr, "psn-load: -baseline:", err)
			os.Exit(2)
		}
	}

	baseURL := *addr
	if *serve {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "psn-load: -serve:", err)
			os.Exit(1)
		}
		hs := &http.Server{Handler: psn.NewServer(psn.ServeConfig{}).Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		baseURL = "http://" + ln.Addr().String()
	} else if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + strings.TrimPrefix(baseURL, ":")
		if strings.HasPrefix(*addr, ":") {
			baseURL = "http://127.0.0.1" + *addr
		}
	}
	baseURL = strings.TrimRight(baseURL, "/")

	client := &http.Client{Timeout: *timeout}

	// Warm-up: one uncounted request per class, serially. The first
	// request of a class may pay artifact builds; folding that into the
	// measured distribution would make the report depend on whether the
	// target had served the mix before.
	warmRng := mathrand.New(mathrand.NewPCG(uint64(*seed), 0x9e3779b97f4a7c15))
	for _, c := range classes {
		method, path, body := c.build(warmRng, *dataset)
		if _, err := fire(client, baseURL, method, path, body, nil); err != nil {
			fmt.Fprintf(os.Stderr, "psn-load: warm-up %s: %v\n", c.name, err)
			os.Exit(1)
		}
	}

	report := run(client, baseURL, classes, *duration, *rate, *seed, *dataset, *retry)
	report.Mix = *mix
	report.Addr = baseURL

	printSummary(os.Stdout, report)

	path := *out
	if path == "" {
		path = fmt.Sprintf("LOAD_%s.json", report.Date)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "psn-load:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "psn-load:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)

	exit := 0
	if *baseline != "" {
		if !base.diff(os.Stdout, report, *regress) {
			exit = 1
		}
	}
	if *strict && (report.Errors > 0 || report.Shed > 0) {
		fmt.Fprintf(os.Stderr, "psn-load: -strict: %d errors, %d shed\n", report.Errors, report.Shed)
		exit = 1
	}
	os.Exit(exit)
}

// run fires the open-loop Poisson workload and collects the report.
// One dispatcher goroutine owns the arrival clock and the shared RNG;
// every arrival launches a goroutine regardless of how many are still
// outstanding. With maxRetry > 0 a shed (503) response is retried up
// to that many times after a backoff honoring the server's Retry-After
// hint; only the final shed counts against the class, and the latency
// recorded for a success covers the successful attempt alone (retries
// are reported separately, not folded into the distribution).
func run(client *http.Client, baseURL string, classes []*class, duration time.Duration, rate float64, seed int64, dataset string, maxRetry int) LoadReport {
	totalWeight := 0
	for _, c := range classes {
		totalWeight += c.weight
	}
	rng := mathrand.New(mathrand.NewPCG(uint64(seed), uint64(seed)*0x9e3779b97f4a7c15+1))

	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(duration)
	next := start
	for i := 0; ; i++ {
		next = next.Add(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
		if next.After(deadline) {
			break
		}
		time.Sleep(time.Until(next))
		c := pickClass(classes, totalWeight, rng)
		reqSeed := engine.DeriveSeed(seed, i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			reqRng := mathrand.New(mathrand.NewPCG(uint64(reqSeed), uint64(reqSeed)>>1|1))
			method, path, body := c.build(reqRng, dataset)
			c.requests.Add(1)
			for attempt := 0; ; attempt++ {
				t0 := time.Now()
				failovers, err := fire(client, baseURL, method, path, body, &c.hist)
				var shed *shedError
				switch {
				case errors.As(err, &shed):
					if attempt < maxRetry {
						c.retries.Add(1)
						time.Sleep(retryDelay(reqRng, attempt, shed.retryAfter))
						continue
					}
					c.shed.Add(1)
					if shed.tier == "router" {
						c.shedRouter.Add(1)
					} else {
						c.shedReplica.Add(1)
					}
				case err != nil:
					c.errors.Add(1)
				default:
					c.failovers.Add(failovers)
					c.hist.Record(time.Since(t0))
				}
				return
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	report := LoadReport{
		Date:       time.Now().Format("2006-01-02"),
		DurationS:  elapsed.Seconds(),
		TargetRate: rate,
		Dataset:    dataset,
		Seed:       seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, c := range classes {
		s := c.hist.Snapshot()
		lc := LoadClass{
			Name:         c.name,
			Requests:     c.requests.Load(),
			Errors:       c.errors.Load(),
			Shed:         c.shed.Load(),
			ShedRouter:   c.shedRouter.Load(),
			ShedReplica:  c.shedReplica.Load(),
			Failovers:    c.failovers.Load(),
			Retries:      c.retries.Load(),
			AchievedRate: float64(s.Count) / elapsed.Seconds(),
			P50Ms:        ms(s.Quantile(0.50)),
			P90Ms:        ms(s.Quantile(0.90)),
			P99Ms:        ms(s.Quantile(0.99)),
			MaxMs:        float64(s.MaxNs) / 1e6,
			MeanMs:       ms(s.Mean()),
		}
		report.Requests += lc.Requests
		report.Errors += lc.Errors
		report.Shed += lc.Shed
		report.ShedRouter += lc.ShedRouter
		report.ShedReplica += lc.ShedReplica
		report.Failovers += lc.Failovers
		report.Retries += lc.Retries
		report.Classes = append(report.Classes, lc)
	}
	report.AchievedRate = float64(report.Requests-report.Errors) / elapsed.Seconds()
	return report
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

func pickClass(classes []*class, totalWeight int, rng *mathrand.Rand) *class {
	n := rng.IntN(totalWeight)
	for _, c := range classes {
		if n < c.weight {
			return c
		}
		n -= c.weight
	}
	return classes[len(classes)-1]
}

// shedError marks a 503 — the server's explicit backpressure signal,
// reported separately from errors — carrying the Retry-After hint the
// -retry backoff honors (0 when the header was absent or unparsable)
// and the shedding tier from X-Psn-Shed: "router" for router
// backpressure, anything else attributed to a replica.
type shedError struct {
	retryAfter time.Duration
	tier       string
}

func (e *shedError) Error() string { return "shed (503)" }

// retryDelay is the pause before retry attempt+1: exponential from
// 100ms, capped at 2s, with the upper half jittered so retrying
// clients spread out — and never shorter than the server's Retry-After
// hint, which knows better (a degraded dataset reports its whole
// backoff window there).
func retryDelay(rng *mathrand.Rand, attempt int, retryAfter time.Duration) time.Duration {
	if attempt > 4 {
		attempt = 4
	}
	d := 100 * time.Millisecond << attempt
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	d = d/2 + time.Duration(rng.Int64N(int64(d/2)+1))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// fire sends one request and drains the response, returning the
// router-reported failover count behind a success (X-Psn-Failovers; 0
// against a bare replica). hist is unused here (latency is recorded by
// the caller so the clock covers exactly one attempt); it is accepted
// to keep the warm-up call shape identical.
func fire(client *http.Client, baseURL, method, path string, body []byte, hist *obs.Histogram) (int64, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, baseURL+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		ra, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		return 0, &shedError{
			retryAfter: time.Duration(ra) * time.Second,
			tier:       resp.Header.Get("X-Psn-Shed"),
		}
	case resp.StatusCode != http.StatusOK:
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	fo, _ := strconv.ParseInt(resp.Header.Get("X-Psn-Failovers"), 10, 64)
	return fo, nil
}

func printSummary(w io.Writer, r LoadReport) {
	fmt.Fprintf(w, "psn-load: %s  %.1fs at target %.1f req/s (achieved %.1f), %d requests, %d errors, %d shed\n",
		r.Addr, r.DurationS, r.TargetRate, r.AchievedRate, r.Requests, r.Errors, r.Shed)
	if r.ShedRouter > 0 || r.Failovers > 0 {
		fmt.Fprintf(w, "psn-load: router target: %d router-shed, %d replica-shed, %d failovers behind successes\n",
			r.ShedRouter, r.ShedReplica, r.Failovers)
	}
	fmt.Fprintf(w, "%-10s %9s %7s %6s %9s %9s %9s %9s %9s\n",
		"class", "requests", "errors", "shed", "p50(ms)", "p90(ms)", "p99(ms)", "max(ms)", "mean(ms)")
	for _, c := range r.Classes {
		fmt.Fprintf(w, "%-10s %9d %7d %6d %9.2f %9.2f %9.2f %9.2f %9.2f\n",
			c.Name, c.Requests, c.Errors, c.Shed, c.P50Ms, c.P90Ms, c.P99Ms, c.MaxMs, c.MeanMs)
	}
}
