package main

import (
	"encoding/json"
	"fmt"
	"io"
	mathrand "math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	psn "repro"
)

func TestParseMix(t *testing.T) {
	classes, err := parseMix("enumerate=4,batch=1,simulate=2,figures=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 4 {
		t.Fatalf("got %d classes, want 4", len(classes))
	}
	if classes[0].name != "enumerate" || classes[0].weight != 4 {
		t.Errorf("first class %s=%d, want enumerate=4", classes[0].name, classes[0].weight)
	}
	if _, err := parseMix("bogus=1"); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := parseMix("enumerate=1,enumerate=2"); err == nil {
		t.Error("repeated class accepted")
	}
	if _, err := parseMix("enumerate=0"); err == nil {
		t.Error("all-zero mix accepted")
	}
	if cs, err := parseMix("enumerate=1,simulate=0"); err != nil || len(cs) != 1 {
		t.Errorf("zero-weight class not dropped: %v, %d classes", err, len(cs))
	}
}

// TestLoadAgainstServer drives a short open-loop run against an
// in-process server and cross-checks the generator's totals against
// the server's /metrics — the acceptance criterion that the recorded
// histogram counts match what the generator actually sent.
func TestLoadAgainstServer(t *testing.T) {
	srv := psn.NewServer(psn.ServeConfig{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	classes, err := parseMix("enumerate=2,simulate=1,figures=1")
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	report := run(client, ts.URL, classes, 1500*time.Millisecond, 60, 7, "dev", 0)

	if report.Requests == 0 {
		t.Fatal("no requests fired")
	}
	if report.Errors != 0 || report.Shed != 0 {
		t.Fatalf("errors %d shed %d, want 0/0", report.Errors, report.Shed)
	}
	byName := map[string]LoadClass{}
	for _, c := range report.Classes {
		byName[c.Name] = c
		if c.Requests > 0 {
			if !(c.P50Ms <= c.P90Ms && c.P90Ms <= c.P99Ms && c.P99Ms <= c.MaxMs) {
				t.Errorf("class %s: quantiles not monotone: %+v", c.Name, c)
			}
		}
	}

	// Server-side request counters must equal the generator's totals
	// (both /enumerate forms land on the enumerate endpoint).
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	served := func(endpoint string) int64 {
		re := regexp.MustCompile(fmt.Sprintf(`psn_requests_total\{endpoint=%q\} (\d+)`, endpoint))
		m := re.FindSubmatch(metrics)
		if m == nil {
			return 0
		}
		n, _ := strconv.ParseInt(string(m[1]), 10, 64)
		return n
	}
	histCount := func(endpoint string) int64 {
		re := regexp.MustCompile(fmt.Sprintf(`psn_request_duration_seconds_count\{endpoint=%q\} (\d+)`, endpoint))
		m := re.FindSubmatch(metrics)
		if m == nil {
			return 0
		}
		n, _ := strconv.ParseInt(string(m[1]), 10, 64)
		return n
	}
	checks := []struct {
		endpoint string
		want     int64
	}{
		{"enumerate", byName["enumerate"].Requests},
		{"simulate", byName["simulate"].Requests},
		{"figures", byName["figures"].Requests},
	}
	for _, c := range checks {
		if got := served(c.endpoint); got != c.want {
			t.Errorf("server counted %d %s requests, generator sent %d", got, c.endpoint, c.want)
		}
		if got := histCount(c.endpoint); got != c.want {
			t.Errorf("latency histogram for %s counts %d, generator sent %d", c.endpoint, got, c.want)
		}
	}

	// The report round-trips through the checker.
	path := filepath.Join(t.TempDir(), "LOAD_test.json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkReport(path); err != nil {
		t.Errorf("checkReport on fresh run: %v", err)
	}
}

func TestCheckReportRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if err := checkReport(write("garbage.json", "not json")); err == nil {
		t.Error("garbage accepted")
	}
	if err := checkReport(write("empty.json", `{"date":"2026-08-08","durationS":1,"classes":[]}`)); err == nil {
		t.Error("empty class list accepted")
	}
	bad := `{"date":"2026-08-08","durationS":1,"requests":1,"classes":[
		{"name":"enumerate","requests":1,"p50Ms":5,"p90Ms":4,"p99Ms":6,"maxMs":6}]}`
	if err := checkReport(write("nonmonotone.json", bad)); err == nil {
		t.Error("non-monotone quantiles accepted")
	}
	bad = `{"date":"2026-08-08","durationS":1,"requests":2,"classes":[
		{"name":"enumerate","requests":1,"p50Ms":1,"p90Ms":2,"p99Ms":3,"maxMs":3}]}`
	if err := checkReport(write("totals.json", bad)); err == nil {
		t.Error("mismatched totals accepted")
	}
}

// TestRetryDelayBounds pins the backoff shape: capped exponential with
// jitter, never below the server's Retry-After hint.
func TestRetryDelayBounds(t *testing.T) {
	rng := mathrand.New(mathrand.NewPCG(1, 2))
	for attempt := 0; attempt < 10; attempt++ {
		d := retryDelay(rng, attempt, 0)
		if d <= 0 || d > 2*time.Second {
			t.Errorf("attempt %d: delay %v outside (0, 2s]", attempt, d)
		}
	}
	if d := retryDelay(rng, 0, 3*time.Second); d < 3*time.Second {
		t.Errorf("Retry-After floor ignored: %v < 3s", d)
	}
}

// TestRetrySheds drives the generator against a server whose first few
// answers are 503 + Retry-After: with -retry armed the sheds are
// retried through (and counted), without it they surface as sheds.
func TestRetrySheds(t *testing.T) {
	srv := psn.NewServer(psn.ServeConfig{})
	var mu sync.Mutex
	shedsLeft := 3
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		shed := shedsLeft > 0 && r.URL.Path == "/enumerate"
		if shed {
			shedsLeft--
		}
		mu.Unlock()
		if shed {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"shed for test"}`)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(handler)
	defer ts.Close()

	classes, err := parseMix("enumerate=1")
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	report := run(client, ts.URL, classes, time.Second, 40, 3, "dev", 2)
	if report.Retries < 3 {
		t.Errorf("Retries = %d, want >= 3 (each shed retried)", report.Retries)
	}
	if report.Shed != 0 {
		t.Errorf("Shed = %d, want 0: every shed had retry budget", report.Shed)
	}
	if report.Errors != 0 {
		t.Errorf("Errors = %d, want 0", report.Errors)
	}
	if len(report.Classes) != 1 || report.Classes[0].Retries != report.Retries {
		t.Errorf("per-class retry accounting missing: %+v", report.Classes)
	}

	// Same shedding server, no retry budget: sheds surface in the report.
	mu.Lock()
	shedsLeft = 2
	mu.Unlock()
	classes2, _ := parseMix("enumerate=1")
	report = run(client, ts.URL, classes2, time.Second, 40, 3, "dev", 0)
	if report.Shed != 2 {
		t.Errorf("Shed = %d, want 2 with retries off", report.Shed)
	}
	if report.Retries != 0 {
		t.Errorf("Retries = %d, want 0 with retries off", report.Retries)
	}
}
