package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// snapshotBaseline wraps a previous LOAD_*.json for diffing — the same
// match-by-name/ratio idiom as psn-bench's BENCH snapshots, applied to
// per-class p50/p99.
type snapshotBaseline struct {
	report LoadReport
	path   string
}

func (b *snapshotBaseline) load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, &b.report); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	b.path = path
	return nil
}

// diff prints the per-class comparison and returns false when limit is
// positive and any class's p99 ratio (current/baseline) exceeds it.
// Classes present in only one report are listed but never gated — a
// class that disappears from the mix cannot fail the gate silently.
func (b *snapshotBaseline) diff(w io.Writer, cur LoadReport, limit float64) bool {
	baseByName := make(map[string]LoadClass, len(b.report.Classes))
	for _, c := range b.report.Classes {
		baseByName[c.Name] = c
	}
	if b.report.GOMAXPROCS != cur.GOMAXPROCS {
		fmt.Fprintf(w, "warning: GOMAXPROCS differs (baseline %d, current %d) — ratios reflect machine shape too\n",
			b.report.GOMAXPROCS, cur.GOMAXPROCS)
	}
	fmt.Fprintf(w, "baseline %s:\n", b.path)
	fmt.Fprintf(w, "%-10s %10s %10s %7s %10s %10s %7s\n",
		"class", "p50 base", "p50 cur", "ratio", "p99 base", "p99 cur", "ratio")
	ok := true
	for _, c := range cur.Classes {
		base, found := baseByName[c.Name]
		if !found {
			fmt.Fprintf(w, "%-10s (not in baseline)\n", c.Name)
			continue
		}
		delete(baseByName, c.Name)
		r50 := ratio(c.P50Ms, base.P50Ms)
		r99 := ratio(c.P99Ms, base.P99Ms)
		flag := ""
		if limit > 0 && r99 > limit {
			flag = "  REGRESSION"
			ok = false
		}
		fmt.Fprintf(w, "%-10s %10.2f %10.2f %7.2f %10.2f %10.2f %7.2f%s\n",
			c.Name, base.P50Ms, c.P50Ms, r50, base.P99Ms, c.P99Ms, r99, flag)
	}
	for name := range baseByName {
		fmt.Fprintf(w, "%-10s (baseline only — not gated)\n", name)
	}
	return ok
}

// ratio is current/baseline with a zero baseline reported as 1 when
// the current value is also zero (nothing to compare) and +Inf-like
// large otherwise.
func ratio(cur, base float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 1
		}
		return 1e9
	}
	return cur / base
}

// checkReport validates a LOAD_*.json file: it must parse into the
// report shape, totals must be consistent with the per-class counts,
// and each class's latency quantiles must be monotone. This is the
// machine check CI runs on a fresh smoke report.
func checkReport(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var r LoadReport
	if err := json.Unmarshal(data, &r); err != nil {
		return err
	}
	if r.Date == "" {
		return fmt.Errorf("missing date")
	}
	if r.DurationS <= 0 {
		return fmt.Errorf("durationS %g not positive", r.DurationS)
	}
	if len(r.Classes) == 0 {
		return fmt.Errorf("no classes")
	}
	var req, errs, shed int64
	for _, c := range r.Classes {
		if c.Name == "" {
			return fmt.Errorf("class with empty name")
		}
		if c.Errors+c.Shed > c.Requests {
			return fmt.Errorf("class %s: errors+shed (%d) exceed requests (%d)", c.Name, c.Errors+c.Shed, c.Requests)
		}
		if !(c.P50Ms <= c.P90Ms && c.P90Ms <= c.P99Ms) {
			return fmt.Errorf("class %s: quantiles not monotone (p50 %.3f, p90 %.3f, p99 %.3f)", c.Name, c.P50Ms, c.P90Ms, c.P99Ms)
		}
		// The p99 estimate interpolates inside its bucket and is capped
		// by the recorded max; allow equality but never exceedance.
		if c.P99Ms > c.MaxMs {
			return fmt.Errorf("class %s: p99 %.3f exceeds max %.3f", c.Name, c.P99Ms, c.MaxMs)
		}
		req += c.Requests
		errs += c.Errors
		shed += c.Shed
	}
	if req != r.Requests || errs != r.Errors || shed != r.Shed {
		return fmt.Errorf("totals (%d/%d/%d) do not match class sums (%d/%d/%d)",
			r.Requests, r.Errors, r.Shed, req, errs, shed)
	}
	return nil
}
