package main

import (
	"strings"
	"testing"

	psn "repro"
)

func TestBuildMessagesValidation(t *testing.T) {
	tr := psn.DevTrace(1)
	for _, tc := range []struct {
		name     string
		src, dst int
		start    float64
		wantErr  string
	}{
		{"src without dst", 3, -1, 0, "set together"},
		{"dst without src", -1, 7, 0, "set together"},
		{"negative start", 0, 17, -5, "negative"},
		{"negative start random", -1, -1, -5, "negative"},
		{"equal endpoints", 4, 4, 0, "distinct endpoints"},
		{"src out of range", 999, 3, 0, "outside"},
		{"start past horizon", 0, 17, 1e9, "past the trace horizon"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := buildMessages(tr, tc.src, tc.dst, tc.start, 5, 1)
			if err == nil {
				t.Fatalf("expected error, got nil")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestBuildMessagesSingle(t *testing.T) {
	tr := psn.DevTrace(1)
	msgs, err := buildMessages(tr, 0, 17, 60, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Src != 0 || msgs[0].Dst != 17 || msgs[0].Start != 60 {
		t.Errorf("got %+v, want single message 0->17@60", msgs)
	}
}

func TestBuildMessagesRandomSample(t *testing.T) {
	tr := psn.DevTrace(1)
	msgs, err := buildMessages(tr, -1, -1, 0, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 8 {
		t.Fatalf("got %d messages, want 8", len(msgs))
	}
	for i, m := range msgs {
		if m.Src == m.Dst || int(m.Src) >= tr.NumNodes || int(m.Dst) >= tr.NumNodes {
			t.Errorf("message %d has bad endpoints %+v", i, m)
		}
		if m.Start < 0 || m.Start >= tr.Horizon {
			t.Errorf("message %d start %g outside trace", i, m.Start)
		}
	}
	again, err := buildMessages(tr, -1, -1, 0, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range msgs {
		if msgs[i] != again[i] {
			t.Errorf("sampling not deterministic at %d: %+v vs %+v", i, msgs[i], again[i])
		}
	}
}
