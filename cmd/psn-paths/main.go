// Command psn-paths enumerates the valid forwarding paths for messages
// on a contact trace and reports the path-explosion metrics (optimal
// path duration T1, time to explosion TE).
//
// Usage:
//
//	psn-paths -dataset infocom-9-12 -messages 20 -k 2000
//	psn-paths -trace trace.txt -src 3 -dst 17 -start 600
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	psn "repro"
)

func main() {
	var (
		dataset  = flag.String("dataset", "infocom-9-12", "named dataset (ignored with -trace)")
		traceIn  = flag.String("trace", "", "read a trace file instead of generating one")
		k        = flag.Int("k", 2000, "explosion threshold (paths)")
		delta    = flag.Float64("delta", 10, "space-time discretization step (s)")
		messages = flag.Int("messages", 10, "number of random messages (ignored with -src/-dst)")
		src      = flag.Int("src", -1, "source node of a single message")
		dst      = flag.Int("dst", -1, "destination node of a single message")
		start    = flag.Float64("start", 0, "creation time of the single message (s)")
		seed     = flag.Int64("seed", 42, "message sampling seed")
		verbose  = flag.Bool("v", false, "print the first paths of each message")
	)
	flag.Parse()

	tr, err := loadTrace(*traceIn, *dataset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psn-paths:", err)
		os.Exit(1)
	}
	enum, err := psn.NewEnumerator(tr, psn.EnumOptions{K: *k, Delta: *delta})
	if err != nil {
		fmt.Fprintln(os.Stderr, "psn-paths:", err)
		os.Exit(1)
	}

	msgs, err := buildMessages(tr, *src, *dst, *start, *messages, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psn-paths:", err)
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("%-6s %-6s %8s %10s %10s %8s %10s\n", "src", "dst", "start", "T1 (s)", "TE (s)", "paths", "exploded")
	for _, m := range msgs {
		res, err := enum.Enumerate(m)
		if err != nil {
			fmt.Fprintln(os.Stderr, "psn-paths:", err)
			os.Exit(1)
		}
		s := res.ExplosionSummary(*k)
		t1 := "-"
		te := "-"
		if s.Found {
			t1 = fmt.Sprintf("%.0f", s.T1)
		}
		if s.Exploded {
			te = fmt.Sprintf("%.0f", s.TE)
		}
		fmt.Printf("%-6d %-6d %8.0f %10s %10s %8d %10v\n", m.Src, m.Dst, m.Start, t1, te, s.Paths, s.Exploded)
		if *verbose {
			for i, p := range res.Arrivals {
				if i >= 3 {
					fmt.Printf("    ... %d more paths\n", len(res.Arrivals)-3)
					break
				}
				fmt.Printf("    path %d: %s\n", i+1, p)
			}
		}
	}
}

// loadTrace reads a trace file, or resolves a named dataset through
// the shared registry (an unknown name lists the available ones).
func loadTrace(path, dataset string) (*psn.Trace, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return psn.ReadTrace(f)
	}
	return psn.NewRegistry().Trace(dataset)
}

// buildMessages validates the single-message flag combination (-src,
// -dst, -start) and returns either the one requested message or a
// random sample. A partial or inconsistent combination is an error —
// not a silent fall-back to random sampling.
func buildMessages(tr *psn.Trace, src, dst int, start float64, n int, seed int64) ([]psn.PathMessage, error) {
	if start < 0 {
		return nil, fmt.Errorf("-start %g is negative", start)
	}
	if (src >= 0) != (dst >= 0) {
		return nil, fmt.Errorf("-src and -dst must be set together (got -src %d, -dst %d)", src, dst)
	}
	if src >= 0 {
		if src >= tr.NumNodes || dst >= tr.NumNodes {
			return nil, fmt.Errorf("-src %d / -dst %d outside the trace's %d nodes", src, dst, tr.NumNodes)
		}
		if src == dst {
			return nil, fmt.Errorf("-src and -dst are both %d; a message needs distinct endpoints", src)
		}
		if start >= tr.Horizon {
			return nil, fmt.Errorf("-start %g is past the trace horizon %g", start, tr.Horizon)
		}
		return []psn.PathMessage{{Src: psn.NodeID(src), Dst: psn.NodeID(dst), Start: start}}, nil
	}
	rng := rand.New(rand.NewSource(seed))
	msgs := make([]psn.PathMessage, 0, n)
	for i := 0; i < n; i++ {
		s := psn.NodeID(rng.Intn(tr.NumNodes))
		d := psn.NodeID(rng.Intn(tr.NumNodes - 1))
		if d >= s {
			d++
		}
		msgs = append(msgs, psn.PathMessage{Src: s, Dst: d, Start: rng.Float64() * tr.Horizon * 2 / 3})
	}
	return msgs, nil
}
