package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// delta is one benchmark's baseline comparison. Ratios are
// current/baseline (1.0 = unchanged, <1 = improvement); an allocs
// ratio against a zero baseline is reported as +Inf only when the
// current value is nonzero.
type delta struct {
	Name        string
	BaseNs      float64
	CurNs       float64
	NsRatio     float64
	BaseAllocs  int64
	CurAllocs   int64
	AllocsRatio float64
}

// bestRecord keeps the best (lowest) ns/op, B/op and allocs/op of two
// attempts at one benchmark, taking Iterations from the faster run.
// Each metric is minimized independently: external interference only
// ever inflates a measurement, so the per-metric minimum over repeats
// is the least-noisy estimate of the workload's true cost.
func bestRecord(a, b record) record {
	out := a
	if b.NsPerOp < out.NsPerOp {
		out.NsPerOp = b.NsPerOp
		out.Iterations = b.Iterations
	}
	if b.BytesPerOp < out.BytesPerOp {
		out.BytesPerOp = b.BytesPerOp
	}
	if b.AllocsPerOp < out.AllocsPerOp {
		out.AllocsPerOp = b.AllocsPerOp
	}
	return out
}

// loadSnapshot reads a BENCH_*.json file.
func loadSnapshot(path string) (snapshot, error) {
	var s snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// compareSnapshots matches benchmarks by name (in current-snapshot
// order) and computes the per-benchmark deltas. Benchmarks present in
// only one snapshot cannot be compared — a baseline from an older
// revision may predate newly added benchmarks — but they are returned
// in baseOnly/curOnly rather than silently dropped: a benchmark that
// disappears from the suite can never fail -regress, so the caller
// must at least be told it was skipped.
func compareSnapshots(base, cur snapshot) (deltas []delta, baseOnly, curOnly []string) {
	baseByName := make(map[string]record, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseByName[r.Name] = r
	}
	curNames := make(map[string]bool, len(cur.Benchmarks))
	for _, r := range cur.Benchmarks {
		curNames[r.Name] = true
	}
	for _, r := range base.Benchmarks {
		if !curNames[r.Name] {
			baseOnly = append(baseOnly, r.Name)
		}
	}
	for _, r := range cur.Benchmarks {
		b, ok := baseByName[r.Name]
		if !ok {
			curOnly = append(curOnly, r.Name)
			continue
		}
		deltas = append(deltas, delta{
			Name:        r.Name,
			BaseNs:      b.NsPerOp,
			CurNs:       r.NsPerOp,
			NsRatio:     ratio(r.NsPerOp, b.NsPerOp),
			BaseAllocs:  b.AllocsPerOp,
			CurAllocs:   r.AllocsPerOp,
			AllocsRatio: ratio(float64(r.AllocsPerOp), float64(b.AllocsPerOp)),
		})
	}
	return deltas, baseOnly, curOnly
}

// printSkipped reports benchmarks that could not be compared, one line
// per side, to w (stderr in the CLI — it must not pollute the table).
func printSkipped(w io.Writer, baseOnly, curOnly []string) {
	if len(baseOnly) > 0 {
		fmt.Fprintf(w, "skipped (baseline only, not in current run): %s\n", strings.Join(baseOnly, ", "))
	}
	if len(curOnly) > 0 {
		fmt.Fprintf(w, "skipped (no baseline entry): %s\n", strings.Join(curOnly, ", "))
	}
}

func ratio(cur, base float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return cur / base
}

// gomaxprocsMismatch reports whether the two snapshots ran under
// different GOMAXPROCS, in which case their timings measure different
// workload shapes (parallel benchmarks scale with cores, and even
// serial ones see different scheduler behavior) and regression gating
// between them is meaningless. A baseline that predates the field
// (recorded as 0) is treated as a mismatch: its setting is unknown, so
// a gate against it cannot be trusted either.
func gomaxprocsMismatch(base, cur snapshot) bool {
	return base.GOMAXPROCS != cur.GOMAXPROCS
}

// regressions returns the benchmarks whose ns/op or allocs/op ratio
// exceeds 1+threshold. threshold <= 0 disables the check.
func regressions(deltas []delta, threshold float64) []delta {
	if threshold <= 0 {
		return nil
	}
	var out []delta
	for _, d := range deltas {
		if d.NsRatio > 1+threshold || d.AllocsRatio > 1+threshold {
			out = append(out, d)
		}
	}
	return out
}

// printDeltas renders the comparison table.
func printDeltas(w io.Writer, deltas []delta) {
	fmt.Fprintf(w, "%-28s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "base ns/op", "ns/op", "Δ", "base allocs", "allocs", "Δ")
	for _, d := range deltas {
		fmt.Fprintf(w, "%-28s %14.0f %14.0f %7.2fx %12d %12d %7.2fx\n",
			d.Name, d.BaseNs, d.CurNs, d.NsRatio, d.BaseAllocs, d.CurAllocs, d.AllocsRatio)
	}
}
