package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snap(recs ...record) snapshot {
	return snapshot{Date: "2026-07-30", Benchmarks: recs}
}

func TestBestRecordKeepsPerMetricMinimum(t *testing.T) {
	a := record{Name: "A", Iterations: 100, NsPerOp: 120, BytesPerOp: 900, AllocsPerOp: 7}
	b := record{Name: "A", Iterations: 150, NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 5}
	got := bestRecord(a, b)
	want := record{Name: "A", Iterations: 150, NsPerOp: 100, BytesPerOp: 900, AllocsPerOp: 5}
	if got != want {
		t.Errorf("bestRecord = %+v, want %+v", got, want)
	}
	// Order must not matter.
	if swapped := bestRecord(b, a); swapped != want {
		t.Errorf("bestRecord swapped = %+v, want %+v", swapped, want)
	}
	// Identical attempts are a fixed point.
	if same := bestRecord(a, a); same != a {
		t.Errorf("bestRecord(a, a) = %+v, want %+v", same, a)
	}
}

func TestBestRecordIterationsFollowFastestRun(t *testing.T) {
	fast := record{Name: "A", Iterations: 300, NsPerOp: 50, BytesPerOp: 10, AllocsPerOp: 1}
	slow := record{Name: "A", Iterations: 80, NsPerOp: 90, BytesPerOp: 10, AllocsPerOp: 1}
	if got := bestRecord(slow, fast); got.Iterations != 300 {
		t.Errorf("Iterations = %d, want the fastest run's 300", got.Iterations)
	}
}

func TestCompareSnapshotsMatchesByName(t *testing.T) {
	base := snap(
		record{Name: "A", NsPerOp: 100, AllocsPerOp: 10},
		record{Name: "Removed", NsPerOp: 5, AllocsPerOp: 5},
	)
	cur := snap(
		record{Name: "A", NsPerOp: 50, AllocsPerOp: 20},
		record{Name: "New", NsPerOp: 7, AllocsPerOp: 7},
	)
	deltas, baseOnly, curOnly := compareSnapshots(base, cur)
	if len(deltas) != 1 {
		t.Fatalf("deltas = %+v, want exactly the matched benchmark", deltas)
	}
	d := deltas[0]
	if d.Name != "A" || d.NsRatio != 0.5 || d.AllocsRatio != 2 {
		t.Errorf("delta = %+v, want A with ns 0.5x, allocs 2x", d)
	}
	// Unmatched benchmarks are reported, not silently dropped: a
	// benchmark that disappears from the suite can never fail -regress.
	if len(baseOnly) != 1 || baseOnly[0] != "Removed" {
		t.Errorf("baseOnly = %v, want [Removed]", baseOnly)
	}
	if len(curOnly) != 1 || curOnly[0] != "New" {
		t.Errorf("curOnly = %v, want [New]", curOnly)
	}

	var b strings.Builder
	printSkipped(&b, baseOnly, curOnly)
	out := b.String()
	if !strings.Contains(out, "Removed") || !strings.Contains(out, "New") {
		t.Errorf("printSkipped output missing names:\n%s", out)
	}
	b.Reset()
	printSkipped(&b, nil, nil)
	if b.Len() != 0 {
		t.Errorf("printSkipped with nothing skipped wrote %q", b.String())
	}
}

func TestCompareSnapshotsZeroBaseline(t *testing.T) {
	base := snap(record{Name: "A", NsPerOp: 100, AllocsPerOp: 0})
	cur := snap(record{Name: "A", NsPerOp: 100, AllocsPerOp: 3})
	deltas, _, _ := compareSnapshots(base, cur)
	if d := deltas[0]; !math.IsInf(d.AllocsRatio, 1) {
		t.Errorf("allocs ratio vs zero baseline = %g, want +Inf", d.AllocsRatio)
	}
	cur.Benchmarks[0].AllocsPerOp = 0
	deltas, _, _ = compareSnapshots(base, cur)
	if d := deltas[0]; d.AllocsRatio != 1 {
		t.Errorf("0/0 allocs ratio = %g, want 1", d.AllocsRatio)
	}
}

func TestRegressions(t *testing.T) {
	deltas := []delta{
		{Name: "ok", NsRatio: 1.05, AllocsRatio: 1.0},
		{Name: "slow", NsRatio: 1.30, AllocsRatio: 1.0},
		{Name: "leaky", NsRatio: 0.9, AllocsRatio: 2.0},
	}
	bad := regressions(deltas, 0.15)
	if len(bad) != 2 || bad[0].Name != "slow" || bad[1].Name != "leaky" {
		t.Errorf("regressions = %+v, want slow and leaky", bad)
	}
	// A 5% regression passes a 15% threshold; threshold 0 disables.
	if got := regressions(deltas, 0); got != nil {
		t.Errorf("disabled threshold flagged %+v", got)
	}
}

func TestGomaxprocsMismatch(t *testing.T) {
	cases := []struct {
		name      string
		base, cur int
		want      bool
	}{
		{"equal", 1, 1, false},
		{"equal multi-core", 4, 4, false},
		{"baseline serial, current parallel", 1, 2, true},
		{"baseline parallel, current serial", 2, 1, true},
		// A pre-field baseline records 0: its setting is unknown, so
		// gating against it cannot be trusted.
		{"baseline predates field", 0, 2, true},
	}
	for _, tc := range cases {
		base := snapshot{GOMAXPROCS: tc.base}
		cur := snapshot{GOMAXPROCS: tc.cur}
		if got := gomaxprocsMismatch(base, cur); got != tc.want {
			t.Errorf("%s: gomaxprocsMismatch(%d, %d) = %v, want %v",
				tc.name, tc.base, tc.cur, got, tc.want)
		}
	}
}

func TestSnapshotRecordsGomaxprocs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{"gomaxprocs": 2, "benchmarks": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := loadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.GOMAXPROCS != 2 {
		t.Errorf("GOMAXPROCS = %d, want 2", s.GOMAXPROCS)
	}
}

func TestLoadSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{
		"date": "2026-07-30",
		"benchmarks": [{"name": "X", "ns_per_op": 12.5, "allocs_per_op": 4}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := loadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != 1 || s.Benchmarks[0].Name != "X" || s.Benchmarks[0].NsPerOp != 12.5 {
		t.Errorf("loaded snapshot = %+v", s)
	}
	if _, err := loadSnapshot(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := loadSnapshot(bad); err == nil {
		t.Error("malformed json accepted")
	}
}

func TestPrintDeltas(t *testing.T) {
	var b strings.Builder
	printDeltas(&b, []delta{{Name: "A", BaseNs: 100, CurNs: 50, NsRatio: 0.5, BaseAllocs: 10, CurAllocs: 10, AllocsRatio: 1}})
	out := b.String()
	if !strings.Contains(out, "A") || !strings.Contains(out, "0.50x") {
		t.Errorf("printDeltas output missing fields:\n%s", out)
	}
}
