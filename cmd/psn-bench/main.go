// Command psn-bench runs the repository's key performance benchmarks
// and writes a machine-readable snapshot (ns/op, B/op, allocs/op) so
// the perf trajectory can be tracked across PRs:
//
//	psn-bench                  # writes BENCH_<date>.json
//	psn-bench -o perf.json     # custom output path
//	psn-bench -match Enumerate # run a subset
//	psn-bench -list            # print benchmark names and exit
//
// A previous snapshot can serve as a baseline: -baseline diffs every
// matched benchmark (ns/op and allocs/op ratios), and -regress turns
// the diff into a gate — psn-bench exits non-zero when any benchmark
// regresses past the threshold:
//
//	psn-bench -baseline BENCH_2026-07-30.json                # print deltas
//	psn-bench -baseline old.json -regress 0.15               # fail on >15% regression
//
// -cpus N pins GOMAXPROCS for the run (0 keeps the environment's
// setting), so single-core and multi-core snapshots can be taken from
// one machine. Snapshots record the GOMAXPROCS they ran under; when a
// baseline's differs from the current run's, timings are not
// comparable — psn-bench prints a warning and skips -regress gating
// rather than fail (or pass) a gate on an apples-to-oranges diff:
//
//	psn-bench -cpus 2 -count 2 -baseline BENCH_2026-08-08.json
//
// -count N runs every benchmark N times and keeps the best ns/op,
// B/op and allocs/op across attempts. Minimum-of-N is the standard
// noise reducer for benchmark comparisons (scheduling and cache
// interference only ever slow a run down), so baselines diffed with
// -baseline/-regress jitter far less at -count 3 than single runs.
//
// The benchmark bodies are shared with bench_test.go via
// internal/benchsuite (graph index build, single-message and batch
// path enumeration, the cold and warm-sweep simulation workloads);
// each runs through testing.Benchmark with the default 1 s benchtime.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchsuite"
)

// record is one benchmark's JSON row.
type record struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// snapshot is the emitted file layout.
type snapshot struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output path (default BENCH_<date>.json)")
	match := flag.String("match", "", "regexp selecting benchmarks to run (default all)")
	list := flag.Bool("list", false, "list benchmark names and exit")
	baseline := flag.String("baseline", "", "previous BENCH_*.json to diff against")
	regress := flag.Float64("regress", 0, "with -baseline: exit non-zero when ns/op or allocs/op regresses by more than this fraction (e.g. 0.15 = 15%); 0 disables")
	count := flag.Int("count", 1, "run each benchmark this many times and keep the best ns/op and allocs/op")
	cpus := flag.Int("cpus", 0, "set GOMAXPROCS for the benchmark run (0 keeps the environment's setting)")
	flag.Parse()
	if *count < 1 {
		fmt.Fprintln(os.Stderr, "psn-bench: -count must be at least 1")
		os.Exit(2)
	}
	if *cpus < 0 {
		fmt.Fprintln(os.Stderr, "psn-bench: -cpus must be non-negative")
		os.Exit(2)
	}
	if *cpus > 0 {
		runtime.GOMAXPROCS(*cpus)
	}

	all := benchsuite.Specs()
	if *list {
		for _, s := range all {
			fmt.Println(s.Name)
		}
		return
	}
	var re *regexp.Regexp
	if *match != "" {
		var err error
		if re, err = regexp.Compile(*match); err != nil {
			fmt.Fprintf(os.Stderr, "psn-bench: bad -match: %v\n", err)
			os.Exit(2)
		}
	}
	// Load the baseline before anything is written: the default output
	// path (BENCH_<today>.json) can collide with the baseline file, and
	// a late load would then silently diff the snapshot against itself.
	var base snapshot
	if *baseline != "" {
		var err error
		if base, err = loadSnapshot(*baseline); err != nil {
			fmt.Fprintf(os.Stderr, "psn-bench: -baseline: %v\n", err)
			os.Exit(2)
		}
	}

	snap := snapshot{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, s := range all {
		if re != nil && !re.MatchString(s.Name) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", s.Name)
		var rec record
		for attempt := 0; attempt < *count; attempt++ {
			r := testing.Benchmark(s.Run)
			if r.N == 0 {
				// testing.Benchmark swallows b.Fatal and returns a zero
				// result; don't write a corrupted trajectory point.
				fmt.Fprintf(os.Stderr, "psn-bench: %s failed\n", s.Name)
				os.Exit(1)
			}
			cur := record{
				Name:        s.Name,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}
			if attempt == 0 {
				rec = cur
			} else {
				rec = bestRecord(rec, cur)
			}
		}
		fmt.Fprintf(os.Stderr, "  %12.0f ns/op %12d B/op %9d allocs/op\n",
			rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp)
		snap.Benchmarks = append(snap.Benchmarks, rec)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", snap.Date)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "psn-bench: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "psn-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(path)

	if *baseline != "" {
		deltas, baseOnly, curOnly := compareSnapshots(base, snap)
		printDeltas(os.Stdout, deltas)
		printSkipped(os.Stderr, baseOnly, curOnly)
		gate := *regress
		if gomaxprocsMismatch(base, snap) {
			fmt.Fprintf(os.Stderr, "psn-bench: baseline GOMAXPROCS=%d differs from current GOMAXPROCS=%d; timings are not comparable\n",
				base.GOMAXPROCS, snap.GOMAXPROCS)
			if gate > 0 {
				fmt.Fprintln(os.Stderr, "psn-bench: skipping -regress gating (GOMAXPROCS mismatch)")
				gate = 0
			}
		}
		if bad := regressions(deltas, gate); len(bad) > 0 {
			for _, d := range bad {
				fmt.Fprintf(os.Stderr, "psn-bench: regression: %s (ns/op %.2fx, allocs/op %.2fx exceeds 1+%.2f)\n",
					d.Name, d.NsRatio, d.AllocsRatio, *regress)
			}
			os.Exit(1)
		}
	}
}
